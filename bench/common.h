#ifndef MAB_BENCH_COMMON_H
#define MAB_BENCH_COMMON_H

/**
 * @file
 * Shared plumbing for the bench harness: prefetcher factory, run
 * helpers, and table formatting. Every bench binary regenerates one
 * table or figure of the paper (see DESIGN.md for the index) and
 * prints the same rows/series the paper reports.
 *
 * Scale: the paper simulates 1B instructions per trace and 150M
 * instructions per SMT thread; the harness defaults to ~1M-instruction
 * / ~1M-cycle runs so the full suite completes in minutes on one core.
 * Set MAB_BENCH_SCALE=<f> to multiply all run lengths (e.g. 10 for a
 * long run).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cpu/bandit_prefetch.h"
#include "cpu/core_model.h"
#include "prefetch/bingo.h"
#include "prefetch/ensemble.h"
#include "prefetch/ipcp.h"
#include "prefetch/mlop.h"
#include "prefetch/pythia.h"
#include "prefetch/stride.h"
#include "sim/json.h"
#include "sim/stats.h"
#include "trace/suites.h"

namespace mab::bench {

/** Global run-length multiplier (MAB_BENCH_SCALE, default 1.0). */
inline double
benchScale()
{
    if (const char *env = std::getenv("MAB_BENCH_SCALE")) {
        const double f = std::atof(env);
        if (f > 0.0)
            return f;
    }
    return 1.0;
}

/** Scale an instruction/cycle budget by the global multiplier. */
inline uint64_t
scaled(uint64_t n)
{
    return static_cast<uint64_t>(static_cast<double>(n) * benchScale());
}

/**
 * Structured-output destination: `--json <path>` on the command line,
 * else the MAB_BENCH_JSON environment variable, else none. Every
 * bench binary keeps printing its human-readable table; the JSON file
 * is emitted alongside for machine consumption (diffing, plotting,
 * regression tracking).
 */
inline const char *
jsonOutPath(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            return argv[i + 1];
    }
    return std::getenv("MAB_BENCH_JSON");
}

/**
 * Write @p root to the destination selected by jsonOutPath(), if any.
 * Returns false (and reports on stderr) on I/O failure so binaries
 * can exit nonzero.
 */
inline bool
writeJsonReport(const json::Value &root, int argc, char **argv)
{
    const char *path = jsonOutPath(argc, argv);
    if (!path)
        return true;
    std::FILE *f = std::fopen(path, "wb");
    if (!f) {
        std::fprintf(stderr, "cannot open json output: %s\n", path);
        return false;
    }
    const std::string text = root.dump(2);
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    const bool closed = std::fclose(f) == 0;
    if (!ok || !closed) {
        std::fprintf(stderr, "short write on json output: %s\n", path);
        return false;
    }
    std::printf("json report written to %s\n", path);
    return true;
}

/** Names of the prefetchers compared in Figures 8/9/11/14. */
inline std::vector<std::string>
comparisonPrefetchers()
{
    return {"Stride", "Bingo", "MLOP", "Pythia", "Bandit"};
}

/**
 * Instantiate a prefetcher by report name. "Bandit" builds the DUCB
 * Micro-Armed Bandit controller; "Bandit:<algo>" selects another MAB
 * algorithm; "BanditIdeal" removes the 500-cycle selection latency.
 */
inline std::unique_ptr<Prefetcher>
makePrefetcher(const std::string &name, uint64_t seed = 1)
{
    if (name == "None")
        return std::make_unique<NullPrefetcher>();
    if (name == "Stride") {
        // The baseline IP-stride prefetcher [23] runs one stride
        // ahead of the demand stream.
        return std::make_unique<StridePrefetcher>(64, 1);
    }
    if (name == "Bingo")
        return std::make_unique<BingoPrefetcher>();
    if (name == "MLOP")
        return std::make_unique<MlopPrefetcher>();
    if (name == "IPCP")
        return std::make_unique<IpcpPrefetcher>();
    if (name == "Pythia") {
        PythiaConfig cfg;
        cfg.seed = seed * 31 + 7;
        return std::make_unique<PythiaPrefetcher>(cfg);
    }
    if (name == "Bandit" || name.rfind("Bandit:", 0) == 0 ||
        name == "BanditIdeal") {
        BanditPrefetchConfig cfg;
        cfg.mab.seed = seed;
        // The paper's hyperparameters (step = 1000 accesses,
        // c = 0.04, gamma = 0.999) were tuned for 1B-instruction
        // traces with tens of thousands of bandit steps. The scaled
        // runs take a few hundred steps, so the step shrinks
        // proportionally and (per the paper's own tune-set
        // procedure) c/gamma are retuned to the shorter horizon.
        cfg.hw.stepUnits = 125;
        cfg.mab.c = 0.2;
        cfg.mab.gamma = 0.99;
        if (name == "BanditIdeal")
            cfg.hw.selectionLatencyCycles = 0;
        if (name.rfind("Bandit:", 0) == 0) {
            const std::string algo = name.substr(7);
            if (algo == "eGreedy")
                cfg.algorithm = MabAlgorithm::EpsilonGreedy;
            else if (algo == "UCB")
                cfg.algorithm = MabAlgorithm::Ucb;
            else if (algo == "DUCB")
                cfg.algorithm = MabAlgorithm::Ducb;
            else if (algo == "Single")
                cfg.algorithm = MabAlgorithm::Single;
            else if (algo == "Periodic")
                cfg.algorithm = MabAlgorithm::Periodic;
        }
        return std::make_unique<BanditPrefetchController>(cfg);
    }
    std::fprintf(stderr, "unknown prefetcher: %s\n", name.c_str());
    std::abort();
}

/** Result of one single-core prefetching run. */
struct PfRun
{
    double ipc = 0.0;
    PrefetchStats pf;
    uint64_t llcDemandMisses = 0;
    uint64_t l2DemandAccesses = 0;
    uint64_t instructions = 0;
};

/**
 * Run @p app with @p pf for @p instr instructions.
 *
 * @param seed When nonzero, overrides the profile's base seed for the
 *             synthetic trace, making the run's input stream — and
 *             therefore every exported counter — a pure function of
 *             (app, pf, instr, hier, dram, seed). Zero keeps
 *             app.seed, the per-workload default.
 */
inline PfRun
runPrefetch(const AppProfile &app, Prefetcher &pf, uint64_t instr,
            const HierarchyConfig &hier = {}, const DramConfig &dram = {},
            uint64_t seed = 0)
{
    AppProfile seeded = app;
    if (seed != 0)
        seeded.seed = seed;
    SyntheticTrace trace(seeded);
    CoreModel core(CoreConfig{}, hier, trace, &pf, nullptr, dram);

    // Give learning prefetchers that want it a DRAM utilization probe
    // (Pythia's bandwidth awareness).
    if (auto *pythia = dynamic_cast<PythiaPrefetcher *>(&pf)) {
        Dram *d = &core.hierarchy().dram();
        pythia->setBandwidthProbe([d](uint64_t cycle) {
            const uint64_t busy = d->busFreeCycle();
            if (busy <= cycle)
                return 0.0;
            const double backlog = static_cast<double>(busy - cycle);
            return backlog >= 500.0 ? 1.0 : backlog / 500.0;
        });
    }

    core.run(instr);
    PfRun r;
    r.ipc = core.ipc();
    r.pf = core.hierarchy().prefetchStats();
    r.llcDemandMisses = core.hierarchy().llcDemandMisses();
    r.l2DemandAccesses = core.hierarchy().l2DemandAccesses();
    r.instructions = core.instructions();
    return r;
}

/** Convenience: run by prefetcher name. A nonzero @p seed seeds both
 *  the trace and the prefetcher, for bit-reproducible runs. */
inline PfRun
runPrefetchNamed(const AppProfile &app, const std::string &pf_name,
                 uint64_t instr, const HierarchyConfig &hier = {},
                 const DramConfig &dram = {}, uint64_t seed = 0)
{
    auto pf = makePrefetcher(pf_name, seed != 0 ? seed : app.seed);
    return runPrefetch(app, *pf, instr, hier, dram, seed);
}

/** Print a horizontal rule sized to @p width. */
inline void
rule(int width)
{
    for (int i = 0; i < width; ++i)
        std::fputc('-', stdout);
    std::fputc('\n', stdout);
}

} // namespace mab::bench

#endif // MAB_BENCH_COMMON_H
