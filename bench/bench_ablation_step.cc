/**
 * Ablation: bandit step duration (Table 6: 1000 L2 demand accesses).
 *
 * Short steps give noisy IPC rewards; long steps adapt slowly and pay
 * more for trying bad arms. The sweep shows the tuned value in the
 * sweet spot.
 */
#include "common.h"

using namespace mab;
using namespace mab::bench;

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const uint64_t instr = scaled(800'000);
    auto tune = tuneSetPrefetch();
    tune.resize(20);

    const uint64_t steps[] = {125, 250, 500, 1000, 2000, 4000};

    std::printf("Ablation: bandit step duration (L2 demand accesses), "
                "gmean IPC over %zu tune traces\n", tune.size());
    rule(36);
    for (uint64_t step : steps) {
        std::vector<double> ipcs;
        for (const auto &app : tune) {
            BanditPrefetchConfig cfg;
            cfg.hw.stepUnits = step;
            BanditPrefetchController pf(cfg);
            ipcs.push_back(runPrefetch(app, pf, instr).ipc);
        }
        std::printf("step %5llu   gmean IPC %s\n",
                    static_cast<unsigned long long>(step),
                    fmt(gmean(ipcs), 3).c_str());
    }
    rule(36);
    std::printf("Table 6 value: 1000 L2 accesses.\n");
    return 0;
}
