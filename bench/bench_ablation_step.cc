/**
 * Ablation: bandit step duration (Table 6: 1000 L2 demand accesses).
 *
 * Short steps give noisy IPC rewards; long steps adapt slowly and pay
 * more for trying bad arms. The sweep shows the tuned value in the
 * sweet spot.
 */
#include "common.h"

using namespace mab;
using namespace mab::bench;

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const int jobs = benchJobs(argc, argv);
    benchShards(argc, argv);
    const uint64_t instr = scaled(800'000);
    auto tune = tuneSetPrefetch();
    tune.resize(20);

    const std::vector<uint64_t> steps = {125, 250, 500,
                                         1000, 2000, 4000};

    const std::vector<double> ipcs = shardedSweep<double>(
        jobs, steps.size() * tune.size(), doubleCodec(),
        [&](size_t i) {
            BanditPrefetchConfig cfg;
            cfg.hw.stepUnits = steps[i / tune.size()];
            BanditPrefetchController pf(cfg);
            return runPrefetch(tune[i % tune.size()], pf, instr).ipc;
        });
    if (shardPartialDone(argc, argv))
        return 0;

    std::printf("Ablation: bandit step duration (L2 demand accesses), "
                "gmean IPC over %zu tune traces\n", tune.size());
    rule(36);
    for (size_t s = 0; s < steps.size(); ++s) {
        const std::vector<double> row(
            ipcs.begin() + static_cast<long>(s * tune.size()),
            ipcs.begin() + static_cast<long>((s + 1) * tune.size()));
        std::printf("step %5llu   gmean IPC %s\n",
                    static_cast<unsigned long long>(steps[s]),
                    fmt(gmean(row), 3).c_str());
    }
    rule(36);
    std::printf("Table 6 value: 1000 L2 accesses.\n");
    return 0;
}
