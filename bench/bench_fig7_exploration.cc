/**
 * Figure 7: exploration performed by different algorithms (rows) for
 * different applications (columns) — arm index over time plus the
 * final IPC, for two prefetching traces (cactus, mcf) and two SMT
 * mixes (gcc-lbm, cactus-lbm).
 *
 * Expected shape: Best Static never explores; Single explores only in
 * the initial round-robin phase; UCB and DUCB keep exploring (DUCB
 * more); on mcf, DUCB detects the coarse phase change and settles on
 * a different arm, beating Best Static.
 */
#include <memory>

#include "common.h"
#include "core/heuristics.h"
#include "smt/smt_sim.h"

using namespace mab;
using namespace mab::bench;

namespace {

/** Render an arm timeline sampled at 24 points. */
std::string
timeline(const std::vector<std::pair<uint64_t, int>> &history,
         uint64_t end)
{
    std::string out;
    for (int i = 0; i < 24; ++i) {
        const uint64_t t = end * static_cast<uint64_t>(i) / 24;
        int arm = history.empty() ? 0 : history.front().second;
        for (const auto &[cycle, a] : history) {
            if (cycle <= t)
                arm = a;
            else
                break;
        }
        char buf[8];
        std::snprintf(buf, sizeof(buf), "%2d ", arm);
        out += buf;
    }
    return out;
}

void
prefetchColumn(const std::string &app_name)
{
    const AppProfile app = appByName(app_name);
    const uint64_t instr = scaled(2'000'000);

    std::printf("== prefetching: %s ==\n", app_name.c_str());

    // Best static arm.
    double best_ipc = 0.0;
    ArmId best_arm = 0;
    for (ArmId arm = 0; arm < BanditEnsemblePrefetcher::numArms();
         ++arm) {
        MabConfig mcfg;
        mcfg.numArms = BanditEnsemblePrefetcher::numArms();
        BanditPrefetchController pf(
            std::make_unique<FixedArmPolicy>(mcfg, arm),
            BanditHwConfig{});
        const double ipc = runPrefetch(app, pf, instr).ipc;
        if (ipc > best_ipc) {
            best_ipc = ipc;
            best_arm = arm;
        }
    }
    std::printf("%-11s ipc=%.3f  arm %d throughout\n", "BestStatic",
                best_ipc, best_arm);

    for (const auto &algo : {MabAlgorithm::Single, MabAlgorithm::Ucb,
                             MabAlgorithm::Ducb}) {
        BanditPrefetchConfig cfg;
        cfg.algorithm = algo;
        cfg.hw.recordHistory = true;
        BanditPrefetchController pf(cfg);
        const PfRun r = runPrefetch(app, pf, instr);
        // History is recorded in cycles; estimate the end cycle.
        const uint64_t end =
            static_cast<uint64_t>(static_cast<double>(instr) / r.ipc);
        std::printf("%-11s ipc=%.3f  %s\n", toString(algo).c_str(),
                    r.ipc,
                    timeline(pf.agent().history(), end).c_str());
    }
}

void
smtColumn(const std::string &a, const std::string &b)
{
    SmtRunConfig run_cfg;
    run_cfg.maxCycles = scaled(1'200'000);
    SmtSimulator sim(a, b, run_cfg);

    std::printf("== SMT fetch: %s-%s ==\n", a.c_str(), b.c_str());

    double best_ipc = 0.0;
    int best_arm = 0;
    for (size_t arm = 0; arm < smtArmTable().size(); ++arm) {
        const double ipc = sim.runStatic(smtArmTable()[arm]).ipcSum;
        if (ipc > best_ipc) {
            best_ipc = ipc;
            best_arm = static_cast<int>(arm);
        }
    }
    std::printf("%-11s ipc=%.3f  arm %d (%s) throughout\n",
                "BestStatic", best_ipc, best_arm,
                smtArmTable()[best_arm].name().c_str());

    for (const auto &algo : {MabAlgorithm::Single, MabAlgorithm::Ucb,
                             MabAlgorithm::Ducb}) {
        SmtBanditConfig cfg;
        cfg.algorithm = algo;
        const SmtRunResult r = sim.runBandit(cfg);
        std::printf("%-11s ipc=%.3f  %s\n", toString(algo).c_str(),
                    r.ipcSum,
                    timeline(r.armHistory, r.cycles).c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    std::printf("Figure 7: arm index explored over time "
                "(24 samples per run)\n\n");
    prefetchColumn("cactusADM06");
    std::printf("\n");
    prefetchColumn("mcf06");
    std::printf("\n");
    smtColumn("gcc", "lbm");
    std::printf("\n");
    smtColumn("cactuBSSN", "lbm");
    return 0;
}
