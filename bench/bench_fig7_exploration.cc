/**
 * Figure 7: exploration performed by different algorithms (rows) for
 * different applications (columns) — arm index over time plus the
 * final IPC, for two prefetching traces (cactus, mcf) and two SMT
 * mixes (gcc-lbm, cactus-lbm).
 *
 * Expected shape: Best Static never explores; Single explores only in
 * the initial round-robin phase; UCB and DUCB keep exploring (DUCB
 * more); on mcf, DUCB detects the coarse phase change and settles on
 * a different arm, beating Best Static.
 */
#include <memory>

#include "common.h"
#include "core/heuristics.h"
#include "smt/smt_sim.h"

using namespace mab;
using namespace mab::bench;

namespace {

/** Render an arm timeline sampled at 24 points. */
std::string
timeline(const std::vector<std::pair<uint64_t, int>> &history,
         uint64_t end)
{
    std::string out;
    for (int i = 0; i < 24; ++i) {
        const uint64_t t = end * static_cast<uint64_t>(i) / 24;
        int arm = history.empty() ? 0 : history.front().second;
        for (const auto &[cycle, a] : history) {
            if (cycle <= t)
                arm = a;
            else
                break;
        }
        char buf[8];
        std::snprintf(buf, sizeof(buf), "%2d ", arm);
        out += buf;
    }
    return out;
}

constexpr MabAlgorithm kAlgos[] = {MabAlgorithm::Single,
                                   MabAlgorithm::Ucb,
                                   MabAlgorithm::Ducb};
constexpr size_t kNumAlgos = 3;

/** One run's printable outcome: IPC plus (for bandits) a timeline. */
struct Row
{
    double ipc = 0.0;
    std::string tl;
};

ShardCodec<Row>
rowCodec()
{
    return {[](const Row &r) {
                json::Value v = json::Value::object();
                v["ipc"] = encodeDouble(r.ipc);
                v["tl"] = r.tl;
                return v;
            },
            [](const json::Value &v) {
                Row r;
                r.ipc = decodeDouble(v.find("ipc")->asString());
                r.tl = v.find("tl")->asString();
                return r;
            }};
}

void
prefetchColumn(int jobs, const std::string &app_name)
{
    const AppProfile app = appByName(app_name);
    const uint64_t instr = scaled(2'000'000);

    std::printf("== prefetching: %s ==\n", app_name.c_str());

    // Tasks: one per static arm, then one per bandit algorithm.
    const size_t num_arms =
        static_cast<size_t>(BanditEnsemblePrefetcher::numArms());
    const std::vector<Row> rows = shardedSweep<Row>(
        jobs, num_arms + kNumAlgos, rowCodec(), [&](size_t i) {
            Row row;
            if (i < num_arms) {
                MabConfig mcfg;
                mcfg.numArms = BanditEnsemblePrefetcher::numArms();
                BanditPrefetchController pf(
                    std::make_unique<FixedArmPolicy>(
                        mcfg, static_cast<ArmId>(i)),
                    BanditHwConfig{});
                row.ipc = runPrefetch(app, pf, instr).ipc;
                return row;
            }
            BanditPrefetchConfig cfg;
            cfg.algorithm = kAlgos[i - num_arms];
            cfg.hw.recordHistory = true;
            BanditPrefetchController pf(cfg);
            const PfRun r = runPrefetch(app, pf, instr);
            // History is recorded in cycles; estimate the end cycle.
            const uint64_t end = static_cast<uint64_t>(
                static_cast<double>(instr) / r.ipc);
            row.ipc = r.ipc;
            row.tl = timeline(pf.agent().history(), end);
            return row;
        });

    double best_ipc = 0.0;
    ArmId best_arm = 0;
    for (size_t arm = 0; arm < num_arms; ++arm) {
        if (rows[arm].ipc > best_ipc) {
            best_ipc = rows[arm].ipc;
            best_arm = static_cast<ArmId>(arm);
        }
    }
    std::printf("%-11s ipc=%.3f  arm %d throughout\n", "BestStatic",
                best_ipc, best_arm);
    for (size_t k = 0; k < kNumAlgos; ++k) {
        const Row &row = rows[num_arms + k];
        std::printf("%-11s ipc=%.3f  %s\n",
                    toString(kAlgos[k]).c_str(), row.ipc,
                    row.tl.c_str());
    }
}

void
smtColumn(int jobs, const std::string &a, const std::string &b)
{
    SmtRunConfig run_cfg;
    run_cfg.maxCycles = scaled(1'200'000);

    std::printf("== SMT fetch: %s-%s ==\n", a.c_str(), b.c_str());

    // Every run resets the trace sources and builds a fresh
    // pipeline, so each task can own its own simulator.
    const size_t num_arms = smtArmTable().size();
    const std::vector<Row> rows = shardedSweep<Row>(
        jobs, num_arms + kNumAlgos, rowCodec(), [&](size_t i) {
            SmtSimulator sim(a, b, run_cfg);
            Row row;
            if (i < num_arms) {
                row.ipc = sim.runStatic(smtArmTable()[i]).ipcSum;
                return row;
            }
            SmtBanditConfig cfg;
            cfg.algorithm = kAlgos[i - num_arms];
            const SmtRunResult r = sim.runBandit(cfg);
            row.ipc = r.ipcSum;
            row.tl = timeline(r.armHistory, r.cycles);
            return row;
        });

    double best_ipc = 0.0;
    int best_arm = 0;
    for (size_t arm = 0; arm < num_arms; ++arm) {
        if (rows[arm].ipc > best_ipc) {
            best_ipc = rows[arm].ipc;
            best_arm = static_cast<int>(arm);
        }
    }
    std::printf("%-11s ipc=%.3f  arm %d (%s) throughout\n",
                "BestStatic", best_ipc, best_arm,
                smtArmTable()[best_arm].name().c_str());
    for (size_t k = 0; k < kNumAlgos; ++k) {
        const Row &row = rows[num_arms + k];
        std::printf("%-11s ipc=%.3f  %s\n",
                    toString(kAlgos[k]).c_str(), row.ipc,
                    row.tl.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const int jobs = benchJobs(argc, argv);
    benchShards(argc, argv);
    std::printf("Figure 7: arm index explored over time "
                "(24 samples per run)\n\n");
    prefetchColumn(jobs, "cactusADM06");
    std::printf("\n");
    prefetchColumn(jobs, "mcf06");
    std::printf("\n");
    smtColumn(jobs, "gcc", "lbm");
    std::printf("\n");
    smtColumn(jobs, "cactuBSSN", "lbm");
    // A worker printed placeholder rows above (its sweeps ran only
    // the owned cells); its partial report is the real product.
    shardPartialDone(argc, argv);
    return 0;
}
