/**
 * Figure 8: single-core performance of state-of-the-art L2 prefetchers.
 *
 * For every workload of every suite, runs the Stride baseline, Bingo,
 * MLOP, Pythia and the Micro-Armed Bandit, and reports the per-suite
 * geometric-mean IPC normalized to a system with no L2 prefetcher —
 * the series of the paper's Figure 8 — plus the headline pairwise
 * geomean deltas quoted in Section 7.2.1.
 */
#include <map>

#include "common.h"

using namespace mab;
using namespace mab::bench;

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const int jobs = benchJobs(argc, argv);
    const int batch = benchBatch(argc, argv);
    benchShards(argc, argv);
    const uint64_t instr = scaled(1'000'000);
    const auto pf_names = comparisonPrefetchers();
    const auto workloads = allWorkloads();

    // Task grid: the no-prefetch base plus every comparison
    // prefetcher, per workload. With --batch N the per-workload runs
    // advance in lockstep over one shared replay stream; results are
    // byte-identical either way.
    std::vector<PfTask> grid;
    for (size_t w = 0; w < workloads.size(); ++w) {
        grid.push_back({workloads[w].app, "None", instr, {}, {}, 0, {}});
        for (const auto &pf : pf_names)
            grid.push_back({workloads[w].app, pf, instr, {}, {}, 0, {}});
    }
    const std::vector<PfRun> runs =
        sweepPrefetchRuns(jobs, batch, grid);
    if (shardPartialDone(argc, argv))
        return 0;

    // speedups[pf][suite] -> per-app normalized IPCs.
    std::map<std::string, std::map<std::string, std::vector<double>>>
        speedups;

    json::Value apps = json::Value::array();
    size_t g = 0;
    for (const auto &spec : workloads) {
        const PfRun base = runs[g++];
        for (const auto &pf : pf_names) {
            const PfRun r = runs[g++];
            speedups[pf][spec.suite].push_back(r.ipc / base.ipc);

            json::Value row = json::Value::object();
            row["app"] = spec.app.name;
            row["suite"] = spec.suite;
            row["prefetcher"] = pf;
            row["ipc"] = r.ipc;
            row["speedup"] = r.ipc / base.ipc;
            row["llcDemandMisses"] = r.llcDemandMisses;
            row["pfIssued"] = r.pf.issued;
            row["pfTimely"] = r.pf.timely;
            row["pfLate"] = r.pf.late;
            row["pfWrong"] = r.pf.wrong;
            apps.push(std::move(row));
        }
    }

    std::printf("Figure 8: geomean IPC normalized to no L2 prefetching"
                " (%llu instrs/trace)\n",
                static_cast<unsigned long long>(instr));
    std::printf("%-10s", "");
    for (const auto &suite : allSuites())
        std::printf("%12s", suite.c_str());
    std::printf("%12s\n", "ALL");
    rule(82);

    std::map<std::string, double> overall;
    for (const auto &pf : pf_names) {
        std::printf("%-10s", pf.c_str());
        std::vector<double> all;
        for (const auto &suite : allSuites()) {
            const auto &v = speedups[pf][suite];
            std::printf("%12s", fmt(gmean(v), 3).c_str());
            all.insert(all.end(), v.begin(), v.end());
        }
        overall[pf] = gmean(all);
        std::printf("%12s\n", fmt(overall[pf], 3).c_str());
    }

    rule(82);
    std::printf("Paper (Sec 7.2.1): Bandit vs Stride +9%%, "
                "Bingo +2.6%%, MLOP +2.3%%, Pythia +0.2%%\n");
    for (const auto &pf : {"Stride", "Bingo", "MLOP", "Pythia"}) {
        const double delta =
            100.0 * (overall["Bandit"] / overall[pf] - 1.0);
        std::printf("Measured:  Bandit vs %-7s %+5.1f%%\n", pf, delta);
    }

    json::Value root = json::Value::object();
    root["bench"] = "fig8_singlecore";
    root["instructions"] = instr;
    root["scale"] = benchScale();
    json::Value gm = json::Value::object();
    for (const auto &pf : pf_names) {
        json::Value per_suite = json::Value::object();
        for (const auto &suite : allSuites())
            per_suite[suite] = gmean(speedups[pf][suite]);
        per_suite["ALL"] = overall[pf];
        gm[pf] = std::move(per_suite);
    }
    root["gmeanSpeedup"] = std::move(gm);
    root["runs"] = std::move(apps);
    return writeJsonReport(root, argc, argv) ? 0 : 1;
}
