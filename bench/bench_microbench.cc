/**
 * Simulator hot-path microbenchmarks: nanoseconds (and derived host
 * cycles) per simulated memory access for the inner loops the sweep
 * engine spends its time in.
 *
 * These are the harness behind the serial hot-path optimizations:
 *   - Cache lookup+fill as one single-pass probe per set scan
 *     (BM_CacheLookupFill),
 *   - devirtualized trace-source and prefetcher dispatch in
 *     CoreModel, and the per-access tracing branch hoisted out of the
 *     run loop (BM_CoreStep*).
 *
 * Counters: "ns/access" is wall time per simulated cache access (or
 * per instruction for core-level benches). Compare before/after with
 *     ./bench_microbench --benchmark_repetitions=3
 */
#include <benchmark/benchmark.h>

#include <memory>

#include "core/ducb.h"
#include "core/swucb.h"
#include "cpu/bandit_prefetch.h"
#include "cpu/core_model.h"
#include "memory/cache.h"
#include "prefetch/stride.h"
#include "sim/lockstep.h"
#include "sim/rng.h"
#include "trace/generator.h"
#include "trace/replay.h"
#include "trace/suites.h"

using namespace mab;

namespace {

/** A reproducible mixed stream of hot and streaming lines. */
std::vector<uint64_t>
addressStream(size_t n)
{
    Rng rng(12345);
    std::vector<uint64_t> lines;
    lines.reserve(n);
    uint64_t stream_base = 0x100000;
    for (size_t i = 0; i < n; ++i) {
        const uint64_t r = rng.next64() % 100;
        if (r < 55) {
            // Hot set: revisit one of 512 lines (mostly hits).
            lines.push_back((rng.next64() % 512) * kLineBytes);
        } else {
            // Streaming: fresh lines that force fills + evictions.
            stream_base += kLineBytes;
            lines.push_back(stream_base);
        }
    }
    return lines;
}

} // namespace

/**
 * The Cache::lookupDemand + Cache::fill pair — the per-access work of
 * every level of the hierarchy. The single-pass probe (one combined
 * hit/first-invalid/LRU scan per set) shows up directly here.
 */
static void
BM_CacheLookupFill(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.sizeBytes = static_cast<uint64_t>(state.range(0));
    Cache cache(cfg);
    const auto lines = addressStream(1 << 16);

    uint64_t cycle = 0;
    size_t i = 0;
    for (auto _ : state) {
        const uint64_t line = lines[i];
        i = (i + 1) & (lines.size() - 1);
        ++cycle;
        const Cache::LookupResult r = cache.lookupDemand(line, cycle);
        if (!r.hit)
            cache.fill(line, cycle + 30, false);
        benchmark::DoNotOptimize(cache.demandHits);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["ns/access"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_CacheLookupFill)
    ->Arg(32 * 1024)
    ->Arg(1024 * 1024)
    ->UseRealTime();

/**
 * Pure hit probe: every lookup finds a resident, fill-complete line.
 * Isolates the per-set tag scan + recency update — the cost every
 * level of the hierarchy pays on the (dominant) hit path.
 */
static void
BM_CacheProbeHit(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.sizeBytes = static_cast<uint64_t>(state.range(0));
    Cache cache(cfg);
    // Resident working set: half the capacity, so every set stays
    // fully valid without evictions once warmed.
    const uint64_t resident = cfg.sizeBytes / kLineBytes / 2;
    for (uint64_t i = 0; i < 2 * resident; ++i)
        cache.fill(i * kLineBytes, 0, false);
    Rng rng(42);
    std::vector<uint64_t> lines(1 << 14);
    for (auto &l : lines)
        l = (resident + rng.below(resident)) * kLineBytes;

    uint64_t cycle = 1000;
    size_t i = 0;
    for (auto _ : state) {
        const Cache::LookupResult r =
            cache.lookupDemand(lines[i], ++cycle);
        i = (i + 1) & (lines.size() - 1);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["ns/access"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_CacheProbeHit)->Arg(32 * 1024)->Arg(2 * 1024 * 1024)
    ->UseRealTime();

/**
 * Pure miss probe + victim fill: a streaming line sequence that never
 * re-hits, against a fully valid cache. Every access scans a full set
 * without a match, then runs the fused first-invalid/LRU victim scan
 * and writes the new line — the worst-case per-access path.
 */
static void
BM_CacheProbeMiss(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.sizeBytes = static_cast<uint64_t>(state.range(0));
    Cache cache(cfg);
    for (uint64_t i = 0; i < cfg.sizeBytes / kLineBytes; ++i)
        cache.fill(i * kLineBytes, 0, false);

    uint64_t next = cfg.sizeBytes / kLineBytes;
    uint64_t cycle = 0;
    for (auto _ : state) {
        ++cycle;
        const Cache::LookupResult r =
            cache.lookupDemand(next * kLineBytes, cycle);
        cache.fill(next * kLineBytes, cycle + 30, false);
        ++next;
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["ns/access"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_CacheProbeMiss)->Arg(32 * 1024)->Arg(2 * 1024 * 1024)
    ->UseRealTime();

/**
 * Hits on lines whose fill has not completed (MSHR-merge path): the
 * readyCycle compare goes the in-flight way and the prefetched-line
 * first-use tagging stays live. The branchy tail of the hit path.
 */
static void
BM_CacheProbeInflight(benchmark::State &state)
{
    CacheConfig cfg;
    Cache cache(cfg);
    const uint64_t resident = cfg.sizeBytes / kLineBytes / 2;
    // Far-future readyCycle: every hit is an in-flight merge.
    for (uint64_t i = 0; i < resident; ++i)
        cache.fill(i * kLineBytes, ~0ull, true);
    Rng rng(7);
    std::vector<uint64_t> lines(1 << 14);
    for (auto &l : lines)
        l = rng.below(resident) * kLineBytes;

    uint64_t cycle = 0;
    size_t i = 0;
    for (auto _ : state) {
        const Cache::LookupResult r =
            cache.lookupDemand(lines[i], ++cycle);
        i = (i + 1) & (lines.size() - 1);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["ns/access"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_CacheProbeInflight)->UseRealTime();

namespace {

/** One full bandit interaction: nextArm's score maximization over the
 *  flat arm arrays, the per-arm count update (DUCB's decay multiply /
 *  SW-UCB's window bookkeeping) and the reward fold. */
template <typename Policy>
void
runPolicySteps(benchmark::State &state, Policy &policy)
{
    Rng rng(99);
    for (auto _ : state) {
        const ArmId arm = policy.selectArm();
        policy.observeReward(0.5 + 0.001 * static_cast<double>(
                                               rng.below(1000)));
        benchmark::DoNotOptimize(arm);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["ns/step"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

} // namespace

/**
 * The DUCB decision loop at the Table-7 arm count (11) and a widened
 * arm table (64): the per-arm score loop (hoisted log, flat r/n
 * arrays) plus the per-step discount multiply over every count.
 */
static void
BM_PolicyScores(benchmark::State &state)
{
    MabConfig cfg;
    cfg.numArms = static_cast<int>(state.range(0));
    Ducb policy(cfg);
    runPolicySteps(state, policy);
}
BENCHMARK(BM_PolicyScores)->Arg(11)->Arg(64)->UseRealTime();

/** SW-UCB variant: score loop plus the sliding-window eviction. */
static void
BM_PolicyScoresSwUcb(benchmark::State &state)
{
    MabConfig cfg;
    cfg.numArms = static_cast<int>(state.range(0));
    SwUcb policy(cfg, 128);
    runPolicySteps(state, policy);
}
BENCHMARK(BM_PolicyScoresSwUcb)->Arg(11)->Arg(64)->UseRealTime();

namespace {

/** Run a CoreModel in chunks, one chunk per benchmark iteration. */
void
runCoreChunks(benchmark::State &state, Prefetcher *pf)
{
    const AppProfile app = appByName("lbm06");
    SyntheticTrace trace(app);
    CoreModel core(CoreConfig{}, HierarchyConfig{}, trace, pf);

    constexpr uint64_t kChunk = 20'000;
    uint64_t target = 0;
    for (auto _ : state) {
        target += kChunk;
        core.run(target);
        benchmark::DoNotOptimize(core.instructions());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * kChunk));
    state.counters["ns/instr"] = benchmark::Counter(
        static_cast<double>(state.iterations() * kChunk),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

} // namespace

/**
 * Full core inner loop with a plain stride prefetcher — the dominant
 * cost of single-core sweeps. Exercises the devirtualized trace
 * source and prefetcher dispatch plus the hoisted tracing branch.
 */
static void
BM_CoreStepStride(benchmark::State &state)
{
    StridePrefetcher pf(64, 1);
    runCoreChunks(state, &pf);
}
BENCHMARK(BM_CoreStepStride)->UseRealTime();

/** Core inner loop with the Bandit controller (devirtualized path). */
static void
BM_CoreStepBandit(benchmark::State &state)
{
    BanditPrefetchConfig cfg;
    cfg.hw.stepUnits = 125;
    BanditPrefetchController pf(cfg);
    runCoreChunks(state, &pf);
}
BENCHMARK(BM_CoreStepBandit)->UseRealTime();

/** No prefetcher: the floor — trace generation + hierarchy only. */
static void
BM_CoreStepNoPrefetch(benchmark::State &state)
{
    runCoreChunks(state, nullptr);
}
BENCHMARK(BM_CoreStepNoPrefetch)->UseRealTime();

/**
 * Live trace generation: SyntheticTrace::next() alone — RNG draws,
 * phase machinery, stream cursors. The per-record cost every run pays
 * without the arena.
 */
static void
BM_GeneratorNext(benchmark::State &state)
{
    SyntheticTrace trace(appByName("lbm06"));
    for (auto _ : state) {
        const TraceRecord rec = trace.next();
        benchmark::DoNotOptimize(rec);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["ns/record"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_GeneratorNext)->UseRealTime();

/**
 * Materialized replay: ReplaySource::next() — a bounds check, one
 * 16-byte load and a flag unpack. The per-record cost with an arena
 * hit; compare against BM_GeneratorNext for the per-record saving.
 */
static void
BM_ReplayNext(benchmark::State &state)
{
    const auto trace =
        MaterializedTrace::generate(appByName("lbm06"), 1 << 20);
    ReplaySource src(trace);
    for (auto _ : state) {
        if (src.position() >= src.size())
            src.reset();
        const TraceRecord rec = src.next();
        benchmark::DoNotOptimize(rec);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["ns/record"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_ReplayNext)->UseRealTime();

/**
 * Lockstep record delivery: the lockstepPump() loop of the batch
 * engine (sim/lockstep.h) over a trivial per-cell sink, at batch
 * widths 1 / 2 / 8 / 64. "ns/record/cell" is the amortized per-cell
 * cost of getting one record in front of one simulator instance: one
 * shared ReplaySource fetch per record feeds every cell, so the
 * counter must drop well below BM_ReplayNext's ns/record once the
 * batch is a few cells wide (the sub-ns target at batch >= 8).
 */
static void
BM_LockstepStep(benchmark::State &state)
{
    const size_t cells = static_cast<size_t>(state.range(0));
    const auto trace =
        MaterializedTrace::generate(appByName("lbm06"), 1 << 20);
    ReplaySource src(trace);
    constexpr uint64_t kChunk = 1 << 16;
    uint64_t acc = 0;
    for (auto _ : state) {
        if (src.position() + kChunk > src.size())
            src.reset();
        lockstepPump(src, kChunk, cells,
                     [&acc](size_t, const PackedRecord &rec) {
                         acc += rec.addr;
                     });
        benchmark::DoNotOptimize(acc);
    }
    const double delivered =
        static_cast<double>(state.iterations()) *
        static_cast<double>(kChunk) * static_cast<double>(cells);
    state.SetItemsProcessed(static_cast<int64_t>(delivered));
    state.counters["ns/record/cell"] = benchmark::Counter(
        delivered,
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_LockstepStep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Arg(64)
    ->UseRealTime();

/**
 * Run construction on an arena hit: what a sweep task pays to get its
 * trace source once a sibling task has materialized the workload —
 * a fingerprint, one map lookup and a shared_ptr copy, instead of
 * regenerating the records.
 */
static void
BM_ArenaHitRunConstruction(benchmark::State &state)
{
    TraceArena &arena = TraceArena::global();
    arena.clear();
    const AppProfile app = appByName("lbm06");
    constexpr uint64_t kInstr = 1 << 16;
    arena.acquireTrace(app, kInstr); // warm: every iteration hits
    for (auto _ : state) {
        const auto src = makeRunSource(app, kInstr);
        benchmark::DoNotOptimize(src.get());
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["ns/run"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
    arena.clear();
}
BENCHMARK(BM_ArenaHitRunConstruction)->UseRealTime();

BENCHMARK_MAIN();
