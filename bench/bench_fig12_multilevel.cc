/**
 * Figure 12: multi-level prefetching — combinations of an L1
 * prefetcher with different L2 prefetchers, against the multi-level
 * IPCP prefetcher. Geomean IPC normalized to a system with no L1 or
 * L2 prefetcher.
 *
 * Paper numbers: Stride_Stride +16%, IPCP +24.5%, Stride_Pythia
 * +24.8%, Stride_Bandit +24.5% — Bandit at L2 with a simple stride at
 * L1 is an excellent option.
 */
#include <map>

#include "common.h"

using namespace mab;
using namespace mab::bench;

namespace {

struct Combo
{
    std::string name;
    std::string l1;
    std::string l2;
};

double
runCombo(const AppProfile &app, const Combo &combo, uint64_t instr)
{
    const auto trace = makeRunSource(app, instr);
    auto l1 = combo.l1.empty() ? nullptr
                               : makePrefetcher(combo.l1, app.seed);
    auto l2 = makePrefetcher(combo.l2, app.seed);
    CoreModel core(CoreConfig{}, HierarchyConfig{}, *trace, l2.get(),
                   l1.get());
    core.run(instr);
    return core.ipc();
}

} // namespace

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const int jobs = benchJobs(argc, argv);
    benchShards(argc, argv);
    const uint64_t instr = scaled(800'000);
    const std::vector<Combo> combos = {
        {"Stride_Stride", "Stride", "Stride"},
        {"IPCP", "IPCP", "IPCP"},
        {"Stride_Pythia", "Stride", "Pythia"},
        {"Stride_Bandit", "Stride", "Bandit"},
    };

    const auto workloads = allWorkloads();
    const Combo base_combo{"None", "", "None"};
    const size_t per_app = 1 + combos.size();
    const std::vector<double> ipcs = shardedSweep<double>(
        jobs, workloads.size() * per_app, doubleCodec(),
        [&](size_t i) {
            const size_t c = i % per_app;
            return runCombo(workloads[i / per_app].app,
                            c == 0 ? base_combo : combos[c - 1],
                            instr);
        });
    if (shardPartialDone(argc, argv))
        return 0;

    std::map<std::string, std::vector<double>> speedups;
    for (size_t w = 0; w < workloads.size(); ++w) {
        const double base = ipcs[w * per_app];
        for (size_t c = 0; c < combos.size(); ++c) {
            speedups[combos[c].name].push_back(
                ipcs[w * per_app + 1 + c] / base);
        }
    }

    std::printf("Figure 12: multi-level prefetching, geomean IPC "
                "normalized to no L1/L2 prefetcher\n");
    rule(44);
    for (const auto &combo : combos) {
        std::printf("%-16s %8s  (+%4.1f%%)\n", combo.name.c_str(),
                    fmt(gmean(speedups[combo.name]), 3).c_str(),
                    100.0 * (gmean(speedups[combo.name]) - 1.0));
    }
    rule(44);
    std::printf("Paper: Stride_Stride +16%%, IPCP +24.5%%, "
                "Stride_Pythia +24.8%%, Stride_Bandit +24.5%%\n");
    return 0;
}
