/**
 * Ablation: probabilistic round-robin restart (Section 4.3, second
 * modification). In 4-core runs, concurrent bandits can mis-attribute
 * interference-induced IPC drops to the arm under test and get
 * trapped; restarting the round-robin phase with a small probability
 * (Table 6: 0.001) lets each core re-evaluate all arms. Single-core
 * runs should be insensitive to the knob.
 */
#include <memory>

#include "common.h"
#include "cpu/multicore.h"

using namespace mab;
using namespace mab::bench;

namespace {

double
runFourCore(const AppProfile &app, double restart_prob, uint64_t instr)
{
    DramConfig dram;
    dram.mtps = 4800; // dual channel, as in the Figure 14 runs
    MultiCoreSystem sys(CoreConfig{}, HierarchyConfig{}, dram, 4);
    std::vector<std::unique_ptr<SyntheticTrace>> traces;
    std::vector<std::unique_ptr<BanditPrefetchController>> pfs;
    for (int c = 0; c < 4; ++c) {
        AppProfile per_core = app;
        per_core.seed = app.seed + static_cast<uint64_t>(c) * 911;
        traces.push_back(std::make_unique<SyntheticTrace>(per_core));
        BanditPrefetchConfig cfg;
        cfg.mab.seed = per_core.seed;
        cfg.hw.stepUnits = 125;
        cfg.mab.c = 0.2;
        cfg.mab.gamma = 0.99;
        cfg.mab.rrRestartProb = restart_prob;
        pfs.push_back(
            std::make_unique<BanditPrefetchController>(cfg));
        sys.attachCore(c, *traces.back(), pfs.back().get());
    }
    return sys.run(instr).sumIpc;
}

} // namespace

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const int jobs = benchJobs(argc, argv);
    benchShards(argc, argv);
    const uint64_t instr = scaled(400'000);
    const std::vector<std::string> apps = {
        "lbm06", "bwaves06", "fotonik17", "milc06", "roms17",
        "ligra_pagerank", "parsec_streamcluster", "cactusADM06",
    };

    // Tasks: (app x {restart off, restart on}), interleaved per app.
    const std::vector<double> sums = shardedSweep<double>(
        jobs, 2 * apps.size(), doubleCodec(), [&](size_t i) {
            return runFourCore(appByName(apps[i / 2]),
                               i % 2 == 0 ? 0.0 : 0.01, instr);
        });
    if (shardPartialDone(argc, argv))
        return 0;

    std::printf("Ablation: rr_restart_prob in 4-core homogeneous "
                "mixes (IPC sum)\n");
    std::printf("%-22s %10s %10s %10s\n", "app", "p=0", "p=0.01",
                "delta");
    rule(56);
    std::vector<double> off, on;
    for (size_t i = 0; i < apps.size(); ++i) {
        const double a = sums[2 * i];
        const double b = sums[2 * i + 1];
        off.push_back(a);
        on.push_back(b);
        std::printf("%-22s %10s %10s %+9.1f%%\n", apps[i].c_str(),
                    fmt(a, 3).c_str(), fmt(b, 3).c_str(),
                    100.0 * (b / a - 1.0));
    }
    rule(56);
    std::printf("gmean: off %s, on %s (%+.1f%%)\n",
                fmt(gmean(off), 3).c_str(), fmt(gmean(on), 3).c_str(),
                100.0 * (gmean(on) / gmean(off) - 1.0));
    return 0;
}
