/**
 * Extension study (Section 9): a single Bandit controlling multiple
 * ensembles — the joint L1+L2 agent whose action space is the product
 * of the per-level spaces (3 x 11 = 33 arms) — against the paper's
 * Figure 12 combination of independent prefetchers (stride at L1 +
 * Bandit at L2).
 */
#include <map>

#include "common.h"
#include "cpu/joint_bandit.h"

using namespace mab;
using namespace mab::bench;

namespace {

double
runJoint(const AppProfile &app, uint64_t instr)
{
    MabConfig mab;
    mab.numArms = JointBanditController::numArms();
    mab.seed = app.seed;
    mab.c = 0.2;
    mab.gamma = 0.99;
    BanditHwConfig hw;
    hw.stepUnits = 125;

    JointBanditController ctrl(MabAlgorithm::Ducb, mab, hw);
    const auto trace = makeRunSource(app, instr);
    CoreModel core(CoreConfig{}, HierarchyConfig{}, *trace,
                   ctrl.l2View(), ctrl.l1View());
    core.run(instr);
    return core.ipc();
}

double
runSplit(const AppProfile &app, uint64_t instr)
{
    const auto trace = makeRunSource(app, instr);
    auto l1 = makePrefetcher("Stride", app.seed);
    auto l2 = makePrefetcher("Bandit", app.seed);
    CoreModel core(CoreConfig{}, HierarchyConfig{}, *trace, l2.get(),
                   l1.get());
    core.run(instr);
    return core.ipc();
}

} // namespace

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const int jobs = benchJobs(argc, argv);
    benchShards(argc, argv);
    const uint64_t instr = scaled(1'000'000);
    const auto workloads = allWorkloads();

    // Three independent runs per workload: base, joint, split.
    const std::vector<double> ipcs = shardedSweep<double>(
        jobs, 3 * workloads.size(), doubleCodec(), [&](size_t i) {
            const AppProfile &app = workloads[i / 3].app;
            switch (i % 3) {
            case 0:
                return runPrefetchNamed(app, "None", instr).ipc;
            case 1:
                return runJoint(app, instr);
            default:
                return runSplit(app, instr);
            }
        });
    if (shardPartialDone(argc, argv))
        return 0;

    std::vector<double> joint, split;
    for (size_t w = 0; w < workloads.size(); ++w) {
        const double base = ipcs[3 * w];
        joint.push_back(ipcs[3 * w + 1] / base);
        split.push_back(ipcs[3 * w + 2] / base);
    }

    std::printf("Extension study: joint L1+L2 Bandit (33 arms) vs "
                "independent Stride_Bandit (Figure 12 combo)\n");
    rule(56);
    std::printf("Stride_Bandit (independent)  %8s\n",
                fmt(gmean(split), 3).c_str());
    std::printf("JointBandit   (33-arm)       %8s   (%+.1f%%)\n",
                fmt(gmean(joint), 3).c_str(),
                100.0 * (gmean(joint) / gmean(split) - 1.0));
    rule(56);
    std::printf("The joint agent explores a 3x larger action space; "
                "Section 9 predicts it needs longer episodes to pay "
                "off.\n");
    return 0;
}
