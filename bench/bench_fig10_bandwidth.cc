/**
 * Figure 10: Pythia vs Bandit across available DRAM bandwidths
 * (150 / 600 / 2400 / 9600 MTPS), geomean IPC normalized to
 * no-prefetching at the same bandwidth.
 *
 * The paper's key result: Bandit matches Pythia everywhere and beats
 * it by ~2.5% at the most constrained point (150 MTPS), because its
 * IPC reward makes it learn that aggressive arms do not pay when the
 * bus is saturated — without any explicit bandwidth input.
 */
#include <map>

#include "common.h"

using namespace mab;
using namespace mab::bench;

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const int jobs = benchJobs(argc, argv);
    const int batch = benchBatch(argc, argv);
    benchShards(argc, argv);
    const uint64_t instr = scaled(1'200'000);
    const std::vector<double> mtps_list = {150, 600, 2400, 9600};
    const std::vector<std::string> pfs = {"Pythia", "Bandit"};
    const auto workloads = allWorkloads();

    // One grid over (bandwidth x workload x prefetcher incl. base).
    // Every cell of one workload consumes the same record stream
    // regardless of bandwidth, so with --batch N all 12 of its points
    // can share one lockstep replay.
    std::vector<PfTask> grid;
    for (double mtps : mtps_list) {
        DramConfig dram;
        dram.mtps = mtps;
        for (size_t w = 0; w < workloads.size(); ++w) {
            grid.push_back(
                {workloads[w].app, "None", instr, {}, dram, 0, {}});
            for (const auto &pf : pfs)
                grid.push_back(
                    {workloads[w].app, pf, instr, {}, dram, 0, {}});
        }
    }
    const std::vector<PfRun> runs =
        sweepPrefetchRuns(jobs, batch, grid);
    if (shardPartialDone(argc, argv))
        return 0;

    std::printf("Figure 10: geomean IPC vs available DRAM bandwidth "
                "(normalized to no-prefetch at same bandwidth)\n");
    std::printf("%-10s", "MTPS");
    for (const auto &pf : pfs)
        std::printf("%10s", pf.c_str());
    std::printf("%12s\n", "Bandit/Pyt");
    rule(42);

    size_t g = 0;
    for (double mtps : mtps_list) {
        std::map<std::string, std::vector<double>> speedups;
        for (size_t w = 0; w < workloads.size(); ++w) {
            const PfRun base = runs[g++];
            for (const auto &pf : pfs)
                speedups[pf].push_back(runs[g++].ipc / base.ipc);
        }
        const double pyt = gmean(speedups["Pythia"]);
        const double ban = gmean(speedups["Bandit"]);
        std::printf("%-10s%10s%10s%11.1f%%\n", fmt(mtps, 0).c_str(),
                    fmt(pyt, 3).c_str(), fmt(ban, 3).c_str(),
                    100.0 * (ban / pyt - 1.0));
    }
    rule(42);
    std::printf("Paper: Bandit ~= Pythia at all points; +2.5%% at "
                "150 MTPS.\n");
    return 0;
}
