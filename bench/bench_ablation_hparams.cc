/**
 * Ablation: DUCB hyperparameter sensitivity (gamma and c, Table 6).
 *
 * Sweeps the forgetting factor and the exploration constant on a
 * subset of the tune set. The paper notes (Section 9) that different
 * values work best for different applications; the tuned defaults
 * (gamma = 0.999, c = 0.04) should sit at or near the best geomean.
 */
#include "common.h"

using namespace mab;
using namespace mab::bench;

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const int jobs = benchJobs(argc, argv);
    benchShards(argc, argv);
    const uint64_t instr = scaled(600'000);
    auto tune = tuneSetPrefetch();
    tune.resize(16); // subset keeps the sweep affordable

    const std::vector<double> gammas = {0.9, 0.99, 0.999, 1.0};
    const std::vector<double> cs = {0.01, 0.04, 0.16};

    // One task per (gamma, c, app) point of the sweep.
    const size_t per_cell = tune.size();
    const size_t per_row = cs.size() * per_cell;
    const std::vector<double> ipcs = shardedSweep<double>(
        jobs, gammas.size() * per_row, doubleCodec(), [&](size_t i) {
            BanditPrefetchConfig cfg;
            cfg.hw.stepUnits = 125; // scaled (DESIGN.md 4b)
            cfg.mab.gamma = gammas[i / per_row];
            cfg.mab.c = cs[(i % per_row) / per_cell];
            BanditPrefetchController pf(cfg);
            return runPrefetch(tune[i % per_cell], pf, instr).ipc;
        });
    if (shardPartialDone(argc, argv))
        return 0;

    std::printf("Ablation: DUCB gamma x c sweep, gmean IPC over %zu "
                "tune traces\n", tune.size());
    std::printf("%-8s", "gamma\\c");
    for (double c : cs)
        std::printf("%10.2f", c);
    std::printf("\n");
    rule(40);

    for (size_t gi = 0; gi < gammas.size(); ++gi) {
        std::printf("%-8.3f", gammas[gi]);
        for (size_t ci = 0; ci < cs.size(); ++ci) {
            const auto begin = ipcs.begin() +
                static_cast<long>(gi * per_row + ci * per_cell);
            const std::vector<double> cell(
                begin, begin + static_cast<long>(per_cell));
            std::printf("%10s", fmt(gmean(cell), 3).c_str());
        }
        std::printf("\n");
    }
    rule(40);
    std::printf("Table 6 defaults: gamma=0.999, c=0.04 "
                "(gamma=1.0 degenerates DUCB into UCB).\n");
    return 0;
}
