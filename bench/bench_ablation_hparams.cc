/**
 * Ablation: DUCB hyperparameter sensitivity (gamma and c, Table 6).
 *
 * Sweeps the forgetting factor and the exploration constant on a
 * subset of the tune set. The paper notes (Section 9) that different
 * values work best for different applications; the tuned defaults
 * (gamma = 0.999, c = 0.04) should sit at or near the best geomean.
 */
#include "common.h"

using namespace mab;
using namespace mab::bench;

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const uint64_t instr = scaled(600'000);
    auto tune = tuneSetPrefetch();
    tune.resize(16); // subset keeps the sweep affordable

    const double gammas[] = {0.9, 0.99, 0.999, 1.0};
    const double cs[] = {0.01, 0.04, 0.16};

    std::printf("Ablation: DUCB gamma x c sweep, gmean IPC over %zu "
                "tune traces\n", tune.size());
    std::printf("%-8s", "gamma\\c");
    for (double c : cs)
        std::printf("%10.2f", c);
    std::printf("\n");
    rule(40);

    for (double gamma : gammas) {
        std::printf("%-8.3f", gamma);
        for (double c : cs) {
            std::vector<double> ipcs;
            for (const auto &app : tune) {
                BanditPrefetchConfig cfg;
                cfg.hw.stepUnits = 125; // scaled (DESIGN.md 4b)
                cfg.mab.gamma = gamma;
                cfg.mab.c = c;
                BanditPrefetchController pf(cfg);
                ipcs.push_back(runPrefetch(app, pf, instr).ipc);
            }
            std::printf("%10s", fmt(gmean(ipcs), 3).c_str());
        }
        std::printf("\n");
    }
    rule(40);
    std::printf("Table 6 defaults: gamma=0.999, c=0.04 "
                "(gamma=1.0 degenerates DUCB into UCB).\n");
    return 0;
}
