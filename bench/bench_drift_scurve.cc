/**
 * Drift s-curve: where does each policy's window/discount break?
 *
 * The paper's robustness claim for DUCB rests on non-stationary
 * behaviour its homogeneous workloads never exercise. This sweep
 * makes the claim measurable along two axes:
 *
 *  1. Oracle section — a synthetic drifting bandit (core/drift_env.h)
 *     whose true means shift every P plays with a rotating best arm,
 *     swept over shift period x policy (DUCB discount grid, SW-UCB
 *     window grid, UCB, eGreedy, Thompson). The PhasedRegretTracker
 *     reports post-shift recovery and tail regret rate per cell; read
 *     each policy's row as an s-curve over the period axis — the knee
 *     is where its window/discount breaks.
 *
 *  2. Simulator section — cyclic and adversarial drifting workloads
 *     (trace/drift.h) alternating a streaming regime against a
 *     pointer-chase regime, run through the full prefetching stack at
 *     several shift periods. Drifting profiles are plain AppProfiles,
 *     so the cells materialize/replay/lockstep/shard like any other
 *     sweep (--jobs / --batch / --shards).
 */
#include "common.h"
#include "core/drift_env.h"
#include "trace/drift.h"

using namespace mab;
using namespace mab::bench;

namespace {

/** One cell of the oracle sweep: the tracker summary, transported
 *  losslessly (bit-pattern doubles) through shard partials. */
struct OracleCell
{
    double cumRegret = 0.0;
    double tailRate = 0.0;
    double recoveredFraction = 0.0;
    double meanRecoverySteps = 0.0;
};

ShardCodec<OracleCell>
oracleCodec()
{
    return {[](const OracleCell &c) {
                json::Value v = json::Value::object();
                v["cumRegret"] = encodeDouble(c.cumRegret);
                v["tailRate"] = encodeDouble(c.tailRate);
                v["recoveredFraction"] =
                    encodeDouble(c.recoveredFraction);
                v["meanRecoverySteps"] =
                    encodeDouble(c.meanRecoverySteps);
                return v;
            },
            [](const json::Value &v) {
                OracleCell c;
                c.cumRegret =
                    decodeDouble(v.find("cumRegret")->asString());
                c.tailRate =
                    decodeDouble(v.find("tailRate")->asString());
                c.recoveredFraction = decodeDouble(
                    v.find("recoveredFraction")->asString());
                c.meanRecoverySteps = decodeDouble(
                    v.find("meanRecoverySteps")->asString());
                return c;
            }};
}

} // namespace

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const int jobs = benchJobs(argc, argv);
    const int batch = benchBatch(argc, argv);
    benchShards(argc, argv);

    // ---- Oracle section: shift period x policy over known means.
    const uint64_t steps = std::max<uint64_t>(600, scaled(60'000));
    const std::vector<std::pair<std::string, uint64_t>> periods = {
        {"T/2", std::max<uint64_t>(1, steps / 2)},
        {"T/8", std::max<uint64_t>(1, steps / 8)},
        {"T/32", std::max<uint64_t>(1, steps / 32)},
        {"T/128", std::max<uint64_t>(1, steps / 128)},
    };
    const std::vector<DriftPolicySpec> policies = driftPolicyGrid();
    const size_t cells = periods.size() * policies.size();
    const std::vector<OracleCell> oracle = shardedSweep<OracleCell>(
        jobs, cells, oracleCodec(), [&](size_t i) {
            const DriftPolicySpec &spec =
                policies[i % policies.size()];
            DriftBanditConfig cfg;
            cfg.numArms = 4;
            cfg.steps = steps;
            cfg.periodSteps = periods[i / policies.size()].second;
            cfg.seed = 7;
            const std::unique_ptr<MabPolicy> policy = makeDriftPolicy(
                spec, cfg.numArms, 0x5EED + static_cast<uint64_t>(i));
            const PhasedRegretTracker tracker =
                runDriftingBandit(*policy, cfg);
            OracleCell c;
            c.cumRegret = tracker.cumulative();
            c.tailRate = tracker.tailRegretRate();
            c.recoveredFraction = tracker.recoveredFraction();
            c.meanRecoverySteps = tracker.meanRecoverySteps();
            return c;
        });

    // ---- Simulator section: drifting workloads through the full
    // prefetching stack. All cells of one workload share its record
    // stream, so --batch groups them over one lockstep replay.
    const uint64_t instr = scaled(1'200'000);
    const std::vector<AppProfile> bases = driftBaseProfiles();
    std::vector<DriftProfile> workloads;
    for (const auto &[label, div] :
         std::vector<std::pair<std::string, uint64_t>>{
             {"cyc_T2", 2}, {"cyc_T8", 8}, {"cyc_T32", 32}}) {
        workloads.push_back(makeCyclicProfile(
            "drift_" + label, bases[0], bases[1],
            std::max<uint64_t>(1, instr / div), instr, 911));
    }
    workloads.push_back(makeAdversarialProfile(
        "drift_adv_T16", bases[0], bases[1],
        std::max<uint64_t>(2, instr / 16), instr, 913));

    const std::vector<std::string> pfs = {
        "Bandit:DUCB", "Bandit:UCB", "Bandit:eGreedy", "Stride"};
    std::vector<PfTask> grid;
    for (const DriftProfile &w : workloads)
        for (const std::string &pf : pfs)
            grid.push_back({w.app, pf, instr, {}, {}, 0, {}});
    const std::vector<PfRun> runs =
        sweepPrefetchRuns(jobs, batch, grid);
    if (shardPartialDone(argc, argv))
        return 0;

    // ---- Report.
    std::printf("Drift s-curve, oracle section: synthetic drifting "
                "bandit, %llu steps, 4 arms\n",
                static_cast<unsigned long long>(steps));
    std::printf("(per cell: tail regret rate / recovered fraction; "
                "the knee of a row is where the policy breaks)\n");
    std::printf("%-14s", "policy");
    for (const auto &[label, period] : periods)
        std::printf("  %7s P=%-6llu", label.c_str(),
                    static_cast<unsigned long long>(period));
    std::printf("\n");
    rule(14 + 17 * static_cast<int>(periods.size()));
    for (size_t p = 0; p < policies.size(); ++p) {
        std::printf("%-14s", policies[p].label.c_str());
        for (size_t q = 0; q < periods.size(); ++q) {
            const OracleCell &c =
                oracle[q * policies.size() + p];
            std::printf("    %6.4f/%-5.2f", c.tailRate,
                        c.recoveredFraction);
        }
        std::printf("\n");
    }
    rule(14 + 17 * static_cast<int>(periods.size()));

    std::printf("\nDrift s-curve, simulator section: IPC on drifting "
                "workloads (%llu instrs)\n",
                static_cast<unsigned long long>(instr));
    std::printf("%-16s", "workload");
    for (const std::string &pf : pfs)
        std::printf("%16s", pf.c_str());
    std::printf("\n");
    rule(16 + 16 * static_cast<int>(pfs.size()));
    for (size_t w = 0; w < workloads.size(); ++w) {
        std::printf("%-16s", workloads[w].app.name.c_str());
        for (size_t p = 0; p < pfs.size(); ++p)
            std::printf("%16s",
                        fmt(runs[w * pfs.size() + p].ipc, 3).c_str());
        std::printf("\n");
    }
    rule(16 + 16 * static_cast<int>(pfs.size()));

    json::Value root = json::Value::object();
    root["bench"] = "drift_scurve";
    root["scale"] = benchScale();
    json::Value oracleJson = json::Value::object();
    oracleJson["steps"] = steps;
    oracleJson["numArms"] = static_cast<uint64_t>(4);
    json::Value periodArr = json::Value::array();
    for (size_t q = 0; q < periods.size(); ++q) {
        json::Value entry = json::Value::object();
        entry["label"] = periods[q].first;
        entry["periodSteps"] = periods[q].second;
        json::Value byPolicy = json::Value::object();
        for (size_t p = 0; p < policies.size(); ++p) {
            const OracleCell &c = oracle[q * policies.size() + p];
            json::Value cell = json::Value::object();
            cell["cumRegret"] = c.cumRegret;
            cell["tailRegretRate"] = c.tailRate;
            cell["recoveredFraction"] = c.recoveredFraction;
            cell["meanRecoverySteps"] = c.meanRecoverySteps;
            byPolicy[policies[p].label] = std::move(cell);
        }
        entry["policies"] = std::move(byPolicy);
        periodArr.push(std::move(entry));
    }
    oracleJson["periods"] = std::move(periodArr);
    root["oracle"] = std::move(oracleJson);

    json::Value simJson = json::Value::object();
    simJson["instructions"] = instr;
    json::Value wlArr = json::Value::array();
    for (size_t w = 0; w < workloads.size(); ++w) {
        json::Value entry = json::Value::object();
        entry["workload"] = workloads[w].app.name;
        entry["segments"] =
            static_cast<uint64_t>(workloads[w].schedule.size());
        json::Value ipc = json::Value::object();
        for (size_t p = 0; p < pfs.size(); ++p)
            ipc[pfs[p]] = runs[w * pfs.size() + p].ipc;
        entry["ipc"] = std::move(ipc);
        wlArr.push(std::move(entry));
    }
    simJson["workloads"] = std::move(wlArr);
    root["sim"] = std::move(simJson);
    return writeJsonReport(root, argc, argv) ? 0 : 1;
}
