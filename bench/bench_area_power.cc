/**
 * Section 6.5 / Section 5.4: area, power and storage accounting of
 * the Micro-Armed Bandit agent, including the relative overhead on a
 * 40-core Icelake-class server (die 628 mm^2, TDP 270W) and the
 * storage comparison against prior prefetchers.
 *
 * Also exercises google-benchmark to measure the software cost of an
 * arm selection (the operation the paper budgets 500 hardware cycles
 * for).
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "core/bandit_agent.h"
#include "core/ducb.h"
#include "power/power_model.h"

#include "common.h"

using namespace mab;
using namespace mab::bench;

static void
BM_DucbSelectObserve(benchmark::State &state)
{
    MabConfig cfg;
    cfg.numArms = static_cast<int>(state.range(0));
    Ducb policy(cfg);
    double r = 0.5;
    for (auto _ : state) {
        const ArmId arm = policy.selectArm();
        benchmark::DoNotOptimize(arm);
        r = r * 0.999 + 0.001;
        policy.observeReward(r);
    }
}
BENCHMARK(BM_DucbSelectObserve)->Arg(6)->Arg(11)->Arg(64);

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const BanditAreaPower ap = banditAreaPower();
    const RelativeOverhead rel = relativeOverhead();
    const StorageComparison st = storageComparison();

    std::printf("Section 6.5: Bandit agent area/power at 10nm\n");
    std::printf("  area  = %.5f mm^2   (paper: 0.00044 mm^2)\n",
                ap.areaMm2);
    std::printf("  power = %.3f mW     (paper: 0.11 mW)\n",
                ap.powerMw);
    std::printf("  40-core Icelake overhead: area %.4f%%, power "
                "%.4f%% (paper: < 0.003%%)\n",
                rel.areaPercent, rel.powerPercent);

    std::printf("\nSection 5.4 / 7.2.1: storage comparison\n");
    std::printf("  Bandit agent (11 arms x 8B): %lu B (paper: "
                "< 100B)\n", st.banditAgent);
    std::printf("  Bandit + NL/stream/stride:   %lu B (paper: "
                "< 2KB)\n", st.banditTotal);
    std::printf("  Pythia: %lu B   MLOP: %lu B   Bingo: %lu B\n",
                st.pythia, st.mlop, st.bingo);

    std::printf("\nArm-selection software cost (paper hardware "
                "budget: 500 cycles):\n");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
