/**
 * @file
 * Differential-fuzzing driver (sim/fuzz.h): random-but-valid cache op
 * streams, bandit rollouts, end-to-end CoreModel runs and sweep grids,
 * each derived from a replayable uint64 seed, checked against naive
 * reference models and structural property checks.
 *
 *   bench_fuzz                          200 iterations from seed 1
 *   bench_fuzz --iters 1000 --seed 7    fixed-budget campaign
 *   bench_fuzz --max-seconds 60         time-capped campaign (CI)
 *   bench_fuzz --replay <caseSeed>      re-run one failing case
 *   bench_fuzz --replay <seed> --shrink ...and minimize the witness
 *   bench_fuzz --domain drift           restrict to one oracle domain
 *                                       (cache, bandit, sim, replay,
 *                                       lockstep, drift, sweep)
 *   bench_fuzz --self-test              prove the harness catches
 *                                       planted cache bugs and shrinks
 *                                       them to short repros
 *
 * Exit codes: 0 = all checks passed, 1 = mismatch or property
 * violation (repro lines printed), 2 = usage error.
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common.h"
#include "sim/fuzz.h"

namespace {

using namespace mab;
using namespace mab::bench;

void
printFailures(const fuzz::FuzzReport &report)
{
    for (const fuzz::FuzzFailure &f : report.failures) {
        std::printf("FAIL [%s] case seed %" PRIu64 "\n%s\n",
                    f.domain.c_str(), f.caseSeed, f.message.c_str());
        std::printf("repro: %s\n", f.repro.c_str());
    }
}

void
printSummary(const fuzz::FuzzReport &report)
{
    std::printf("fuzz: %" PRIu64 " iterations (%" PRIu64
                " cache, %" PRIu64 " bandit, %" PRIu64
                " sim, %" PRIu64 " replay, %" PRIu64
                " lockstep, %" PRIu64 " drift, %" PRIu64
                " sweep cases), %zu failure(s)\n",
                report.iterations, report.cacheCases,
                report.banditCases, report.simCases,
                report.replayCases, report.lockstepCases,
                report.driftCases, report.sweepCases,
                report.failures.size());
}

/**
 * Harness self-test: every planted cache mutation must be caught by
 * the differential loop within a bounded number of case seeds, and the
 * shrinker must reduce the witness to a short repro. This is the
 * standing proof that a real regression in the single-pass fill probe
 * would be noticed.
 */
int
runSelfTest(uint64_t seed_base)
{
    constexpr int kMaxSeeds = 50;
    constexpr size_t kMaxShrunkOps = 20;
    bool ok = true;
    for (const fuzz::CacheMutation m : fuzz::allCacheMutations()) {
        const fuzz::CacheModelFactory mutant =
            fuzz::mutantCacheFactory(m);
        bool caught = false;
        for (int i = 0; i < kMaxSeeds && !caught; ++i) {
            const uint64_t cs = fuzz::iterationSeed(seed_base, i);
            const fuzz::CacheCase c =
                fuzz::genCacheCase(fuzz::subSeed(cs, 1));
            const std::string err = fuzz::diffCacheCase(c, mutant);
            if (err.empty())
                continue;
            caught = true;
            const fuzz::CacheCase min = fuzz::shrinkCacheCase(c, mutant);
            std::printf("mutant %-28s caught at seed #%d, "
                        "shrunk %zu -> %zu ops\n",
                        fuzz::toString(m), i, c.ops.size(),
                        min.ops.size());
            if (min.ops.size() > kMaxShrunkOps) {
                std::printf("  ERROR: shrunk repro exceeds %zu ops\n",
                            kMaxShrunkOps);
                ok = false;
            }
        }
        if (!caught) {
            std::printf("mutant %-28s NOT caught in %d seeds\n",
                        fuzz::toString(m), kMaxSeeds);
            ok = false;
        }
    }
    std::printf("self-test: %s\n", ok ? "all mutants caught" : "FAILED");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    fuzz::FuzzOptions opt;

    const auto usageError = [](const std::string &msg) {
        std::fprintf(stderr, "%s\n", msg.c_str());
        return 2;
    };

    const char *v = nullptr;
    std::string err = findFlagValue(argc, argv, "--iters", &v);
    if (!err.empty())
        return usageError(err);
    if (v && !parseUint64(v, &opt.iters))
        return usageError(
            std::string("usage error: --iters needs an unsigned "
                        "integer, got '") +
            v + "'");

    err = findFlagValue(argc, argv, "--seed", &v);
    if (!err.empty())
        return usageError(err);
    if (v && !parseUint64(v, &opt.seedBase))
        return usageError(
            std::string("usage error: --seed needs an unsigned "
                        "integer, got '") +
            v + "'");

    err = findFlagValue(argc, argv, "--max-seconds", &v);
    if (!err.empty())
        return usageError(err);
    if (v) {
        char *end = nullptr;
        opt.maxSeconds = std::strtod(v, &end);
        if (end == v || *end != '\0' || opt.maxSeconds <= 0.0)
            return usageError(
                std::string("usage error: --max-seconds needs a "
                            "positive number, got '") +
                v + "'");
    }

    uint64_t replay_seed = 0;
    bool replay = false;
    err = findFlagValue(argc, argv, "--replay", &v);
    if (!err.empty())
        return usageError(err);
    if (v) {
        if (!parseUint64(v, &replay_seed))
            return usageError(
                std::string("usage error: --replay needs a case "
                            "seed, got '") +
                v + "'");
        replay = true;
    }

    err = findFlagValue(argc, argv, "--domain", &v);
    if (!err.empty())
        return usageError(err);
    if (v) {
        static const char *const kDomains[] = {
            "cache", "bandit",   "sim",   "replay",
            "lockstep", "drift", "sweep"};
        bool known = false;
        for (const char *d : kDomains)
            known = known || std::strcmp(v, d) == 0;
        if (!known)
            return usageError(
                std::string("usage error: unknown --domain '") + v +
                "' (cache, bandit, sim, replay, lockstep, drift, "
                "sweep)");
        opt.domain = v;
    }

    opt.shrink = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--shrink") == 0)
            opt.shrink = true;
    }

    int jobs = 1;
    err = resolveJobs(argc, argv, std::getenv("MAB_BENCH_JOBS"),
                      &jobs);
    if (!err.empty())
        return usageError(err);
    opt.jobs = jobs;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--self-test") == 0)
            return runSelfTest(opt.seedBase);
    }

    if (replay) {
        fuzz::FuzzReport report;
        fuzz::runFuzzIteration(replay_seed, report, opt.shrink,
                               opt.domain);
        printSummary(report);
        if (!report.ok()) {
            printFailures(report);
            return 1;
        }
        std::printf("case seed %" PRIu64 ": all checks passed\n",
                    replay_seed);
        return 0;
    }

    const fuzz::FuzzReport report = fuzz::runFuzz(opt);
    printSummary(report);
    if (!report.ok()) {
        printFailures(report);
        return 1;
    }
    return 0;
}
