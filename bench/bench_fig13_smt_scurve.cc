/**
 * Figure 13: Bandit vs Choi across the full set of 2-thread SPEC17
 * mixes (226 in the paper). Prints the sorted IPC-ratio series (the
 * S-curve), the counts of mixes beyond +/-4%, and the geomean
 * speedups over Choi and over plain ICount.
 *
 * Paper: Bandit > Choi by >4% in 36 mixes (up to +36%), < -4% in only
 * 6; +2.2% geomean over Choi, +7% over ICount.
 */
#include <algorithm>

#include "common.h"
#include "smt/smt_sim.h"

using namespace mab;
using namespace mab::bench;

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const int jobs = benchJobs(argc, argv);
    benchShards(argc, argv);
    SmtRunConfig run_cfg;
    run_cfg.maxCycles = scaled(1'000'000);

    const auto mixes = smtMixes(226);

    // One task per mix; the three regime runs of a mix share the
    // task's simulator, in the original order.
    struct MixResult
    {
        double choi = 0.0;
        double icount = 0.0;
        double bandit = 0.0;
    };
    const ShardCodec<MixResult> codec{
        [](const MixResult &r) {
            json::Value v = json::Value::object();
            v["choi"] = encodeDouble(r.choi);
            v["icount"] = encodeDouble(r.icount);
            v["bandit"] = encodeDouble(r.bandit);
            return v;
        },
        [](const json::Value &v) {
            MixResult r;
            r.choi = decodeDouble(v.find("choi")->asString());
            r.icount = decodeDouble(v.find("icount")->asString());
            r.bandit = decodeDouble(v.find("bandit")->asString());
            return r;
        }};
    const std::vector<MixResult> results = shardedSweep<MixResult>(
        jobs, mixes.size(), codec, [&](size_t i) {
            const auto &[a, b] = mixes[i];
            SmtSimulator sim(a, b, run_cfg);
            MixResult r;
            r.choi = sim.runStatic(choiPolicy()).ipcSum;
            r.icount = sim.runStatic(icountPolicy()).ipcSum;
            r.bandit = sim.runBandit().ipcSum;
            return r;
        });
    if (shardPartialDone(argc, argv))
        return 0;

    std::vector<std::pair<double, std::string>> ratios;
    std::vector<double> vs_choi, vs_icount;
    for (size_t i = 0; i < mixes.size(); ++i) {
        const auto &[a, b] = mixes[i];
        const MixResult &r = results[i];
        ratios.emplace_back(r.bandit / r.choi, a + "-" + b);
        vs_choi.push_back(r.bandit / r.choi);
        vs_icount.push_back(r.bandit / r.icount);
    }

    std::sort(ratios.begin(), ratios.end());

    std::printf("Figure 13: Bandit IPC / Choi IPC, %zu mixes "
                "(sorted; every 8th point of the S-curve)\n",
                ratios.size());
    rule(56);
    for (size_t i = 0; i < ratios.size(); i += 8) {
        std::printf("%4zu  %6.3f  %s\n", i, ratios[i].first,
                    ratios[i].second.c_str());
    }
    std::printf("%4zu  %6.3f  %s\n", ratios.size() - 1,
                ratios.back().first, ratios.back().second.c_str());
    rule(56);

    const auto above = static_cast<int>(std::count_if(
        vs_choi.begin(), vs_choi.end(),
        [](double r) { return r > 1.04; }));
    const auto below = static_cast<int>(std::count_if(
        vs_choi.begin(), vs_choi.end(),
        [](double r) { return r < 0.96; }));
    std::printf("Bandit > Choi by >4%% in %d mixes (max %+.1f%%); "
                "Choi > Bandit by >4%% in %d mixes (min %+.1f%%)\n",
                above, 100.0 * (maxOf(vs_choi) - 1.0), below,
                100.0 * (minOf(vs_choi) - 1.0));
    std::printf("geomean: Bandit vs Choi %+.1f%%, vs ICount %+.1f%%\n",
                100.0 * (gmean(vs_choi) - 1.0),
                100.0 * (gmean(vs_icount) - 1.0));
    std::printf("Paper: 36 mixes >+4%% (max +36%%), 6 mixes <-4%%; "
                "+2.2%% vs Choi, +7%% vs ICount.\n");
    return 0;
}
