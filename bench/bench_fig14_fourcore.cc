/**
 * Figure 14: four-core performance, homogeneous mixes (the same
 * application on every core, sharing the LLC and one DRAM channel).
 * Metric: sum of per-core IPCs, normalized to the no-prefetching
 * system, geomean across mixes.
 *
 * The Bandit agents run with rr_restart_prob = 0.001 (Table 6) to
 * escape arms mis-judged under inter-core interference. Paper: Bandit
 * vs Stride +6%, MLOP +2.4%, Bingo +4%, and ~1% behind Pythia.
 */
#include <map>
#include <memory>

#include "common.h"
#include "cpu/multicore.h"

using namespace mab;
using namespace mab::bench;

namespace {

constexpr int kCores = 4;

double
runHomogeneous(const AppProfile &app, const std::string &pf_name,
               uint64_t instr_per_core)
{
    // 4-core system with a dual-channel memory system (the per-core
    // bandwidth the multi-programmed ChampSim studies provision).
    DramConfig dram;
    dram.mtps = 4800;
    MultiCoreSystem sys(CoreConfig{}, HierarchyConfig{}, dram,
                        kCores);
    std::vector<std::unique_ptr<SyntheticTrace>> traces;
    std::vector<std::unique_ptr<Prefetcher>> pfs;
    for (int c = 0; c < kCores; ++c) {
        AppProfile per_core = app;
        // Different trace regions of the same app per core.
        per_core.seed = app.seed + static_cast<uint64_t>(c) * 911;
        traces.push_back(
            std::make_unique<SyntheticTrace>(per_core));

        if (pf_name == "Bandit") {
            BanditPrefetchConfig cfg;
            cfg.mab.seed = per_core.seed;
            cfg.hw.stepUnits = 125; // scaled (DESIGN.md 4b)
            cfg.mab.c = 0.2;
            cfg.mab.gamma = 0.99;
            // Table 6 uses 0.001 per step over ~10^5 steps; scaled to
            // the ~10^2-step runs.
            cfg.mab.rrRestartProb = 0.005;
            pfs.push_back(
                std::make_unique<BanditPrefetchController>(cfg));
        } else {
            pfs.push_back(makePrefetcher(pf_name, per_core.seed));
        }
        sys.attachCore(c, *traces.back(), pfs.back().get());
    }
    return sys.run(instr_per_core).sumIpc;
}

} // namespace

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const int jobs = benchJobs(argc, argv);
    benchShards(argc, argv);
    const uint64_t instr = scaled(600'000);
    const auto pf_names = comparisonPrefetchers();
    const auto workloads = allWorkloads();

    const size_t per_app = 1 + pf_names.size();
    const std::vector<double> sums = shardedSweep<double>(
        jobs, workloads.size() * per_app, doubleCodec(),
        [&](size_t i) {
            const size_t c = i % per_app;
            return runHomogeneous(workloads[i / per_app].app,
                                  c == 0 ? "None" : pf_names[c - 1],
                                  instr);
        });
    if (shardPartialDone(argc, argv))
        return 0;

    std::map<std::string, std::vector<double>> speedups;
    for (size_t w = 0; w < workloads.size(); ++w) {
        const double base = sums[w * per_app];
        for (size_t c = 0; c < pf_names.size(); ++c)
            speedups[pf_names[c]].push_back(
                sums[w * per_app + 1 + c] / base);
    }

    std::printf("Figure 14: 4-core homogeneous mixes, geomean IPC-sum "
                "normalized to no prefetching\n");
    rule(40);
    std::map<std::string, double> overall;
    for (const auto &pf : pf_names) {
        overall[pf] = gmean(speedups[pf]);
        std::printf("%-10s %8s\n", pf.c_str(),
                    fmt(overall[pf], 3).c_str());
    }
    rule(40);
    std::printf("Paper: Bandit vs Stride +6%%, Bingo +4.0%%, "
                "MLOP +2.4%%, Pythia -1.0%%\n");
    for (const auto &pf : {"Stride", "Bingo", "MLOP", "Pythia"}) {
        std::printf("Measured: Bandit vs %-7s %+5.1f%%\n", pf,
                    100.0 * (overall["Bandit"] / overall[pf] - 1.0));
    }
    return 0;
}
