/**
 * Extension study (Section 9): alternative bandit algorithms beyond
 * the paper's evaluation — Sliding-Window UCB (the companion
 * algorithm of DUCB's source paper), Gaussian Thompson sampling, and
 * the two-level Hierarchical bandit that selects among DUCB
 * hyperparameter variants — against DUCB on the prefetching tune set.
 *
 * Also runs the classifier-augmented controller (per-pattern-class
 * bandits) head-to-head with the single-state Bandit.
 */
#include <map>
#include <memory>

#include "common.h"
#include "cpu/classifier_bandit.h"

using namespace mab;
using namespace mab::bench;

namespace {

std::unique_ptr<Prefetcher>
makeExt(const std::string &name, uint64_t seed)
{
    MabConfig mab;
    mab.numArms = BanditEnsemblePrefetcher::numArms();
    mab.seed = seed;
    mab.c = 0.2;
    mab.gamma = 0.99;
    BanditHwConfig hw;
    hw.stepUnits = 125;

    if (name == "Classifier") {
        return std::make_unique<ClassifierBanditController>(
            MabAlgorithm::Ducb, mab, hw);
    }
    MabAlgorithm algo = MabAlgorithm::Ducb;
    if (name == "SW-UCB")
        algo = MabAlgorithm::SwUcb;
    else if (name == "Thompson")
        algo = MabAlgorithm::Thompson;
    else if (name == "Hierarchical")
        algo = MabAlgorithm::Hierarchical;
    return std::make_unique<BanditPrefetchController>(
        BanditPrefetchConfig{algo, mab, hw});
}

} // namespace

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const int jobs = benchJobs(argc, argv);
    benchShards(argc, argv);
    const uint64_t instr = scaled(1'000'000);
    auto tune = tuneSetPrefetch();
    tune.resize(24); // every other-variant subset keeps this quick

    const std::vector<std::string> algos = {
        "DUCB", "SW-UCB", "Thompson", "Hierarchical", "Classifier",
    };

    const size_t per_app = 1 + algos.size();
    const std::vector<double> ipcs = shardedSweep<double>(
        jobs, tune.size() * per_app, doubleCodec(), [&](size_t i) {
            const AppProfile &app = tune[i / per_app];
            const size_t c = i % per_app;
            if (c == 0)
                return runPrefetchNamed(app, "None", instr).ipc;
            auto pf = makeExt(algos[c - 1], app.seed);
            return runPrefetch(app, *pf, instr).ipc;
        });
    if (shardPartialDone(argc, argv))
        return 0;

    std::map<std::string, std::vector<double>> speedups;
    for (size_t a = 0; a < tune.size(); ++a) {
        const double base = ipcs[a * per_app];
        for (size_t c = 0; c < algos.size(); ++c)
            speedups[algos[c]].push_back(ipcs[a * per_app + 1 + c] /
                                         base);
    }

    std::printf("Extension study: bandit algorithm variants, geomean "
                "IPC vs no prefetching (%zu tune traces)\n",
                tune.size());
    rule(52);
    const double ducb = gmean(speedups["DUCB"]);
    for (const auto &name : algos) {
        const double g = gmean(speedups[name]);
        std::printf("%-14s %8s   (vs DUCB %+5.1f%%)\n", name.c_str(),
                    fmt(g, 3).c_str(), 100.0 * (g / ducb - 1.0));
    }
    rule(52);
    std::printf("Expected: all variants in the same band as DUCB; the "
                "hierarchical and classifier agents trade a few\n"
                "hundred extra bytes for robustness on mixed-phase "
                "apps (Section 9's storage/performance tradeoff).\n");
    return 0;
}
