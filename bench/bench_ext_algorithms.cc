/**
 * Extension study (Section 9): alternative bandit algorithms beyond
 * the paper's evaluation — Sliding-Window UCB (the companion
 * algorithm of DUCB's source paper), Gaussian Thompson sampling, and
 * the two-level Hierarchical bandit that selects among DUCB
 * hyperparameter variants — against DUCB on the prefetching tune set.
 *
 * Also runs the classifier-augmented controller (per-pattern-class
 * bandits) head-to-head with the single-state Bandit.
 */
#include <map>
#include <memory>

#include "common.h"
#include "cpu/classifier_bandit.h"

using namespace mab;
using namespace mab::bench;

namespace {

std::unique_ptr<Prefetcher>
makeExt(const std::string &name, uint64_t seed)
{
    MabConfig mab;
    mab.numArms = BanditEnsemblePrefetcher::numArms();
    mab.seed = seed;
    mab.c = 0.2;
    mab.gamma = 0.99;
    BanditHwConfig hw;
    hw.stepUnits = 125;

    if (name == "Classifier") {
        return std::make_unique<ClassifierBanditController>(
            MabAlgorithm::Ducb, mab, hw);
    }
    MabAlgorithm algo = MabAlgorithm::Ducb;
    if (name == "SW-UCB")
        algo = MabAlgorithm::SwUcb;
    else if (name == "Thompson")
        algo = MabAlgorithm::Thompson;
    else if (name == "Hierarchical")
        algo = MabAlgorithm::Hierarchical;
    return std::make_unique<BanditPrefetchController>(
        BanditPrefetchConfig{algo, mab, hw});
}

} // namespace

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const uint64_t instr = scaled(1'000'000);
    auto tune = tuneSetPrefetch();
    tune.resize(24); // every other-variant subset keeps this quick

    const std::vector<std::string> algos = {
        "DUCB", "SW-UCB", "Thompson", "Hierarchical", "Classifier",
    };

    std::map<std::string, std::vector<double>> speedups;
    for (const auto &app : tune) {
        const PfRun base = runPrefetchNamed(app, "None", instr);
        for (const auto &name : algos) {
            auto pf = makeExt(name, app.seed);
            const PfRun r = runPrefetch(app, *pf, instr);
            speedups[name].push_back(r.ipc / base.ipc);
        }
    }

    std::printf("Extension study: bandit algorithm variants, geomean "
                "IPC vs no prefetching (%zu tune traces)\n",
                tune.size());
    rule(52);
    const double ducb = gmean(speedups["DUCB"]);
    for (const auto &name : algos) {
        const double g = gmean(speedups[name]);
        std::printf("%-14s %8s   (vs DUCB %+5.1f%%)\n", name.c_str(),
                    fmt(g, 3).c_str(), 100.0 * (g / ducb - 1.0));
    }
    rule(52);
    std::printf("Expected: all variants in the same band as DUCB; the "
                "hierarchical and classifier agents trade a few\n"
                "hundred extra bytes for robustness on mixed-phase "
                "apps (Section 9's storage/performance tradeoff).\n");
    return 0;
}
