/**
 * Table 9: min / max / geometric-mean IPC of the Choi policy and of
 * heuristic / bandit algorithms as a percentage of the best static
 * arm, for the SMT thread fetch use case (43 tune mixes).
 *
 * "Best static arm" holds each of the 6 arms of Table 1 fixed for the
 * whole run (with Hill Climbing active) and keeps the best per mix.
 * Paper: DUCB best gmean (98.6%) and min; max above 100% because arm
 * switching injects noise that kicks Hill Climbing out of local
 * maxima.
 */
#include <map>

#include "common.h"
#include "smt/smt_sim.h"

using namespace mab;
using namespace mab::bench;

int
main(int argc, char **argv)
{
    TracingSession observability(argc, argv);
    const int jobs = benchJobs(argc, argv);
    benchShards(argc, argv);
    SmtRunConfig run_cfg;
    run_cfg.maxCycles = scaled(800'000);

    const auto mixes = smtMixes(43, 10);
    const std::vector<std::pair<std::string, MabAlgorithm>> algos = {
        {"Single", MabAlgorithm::Single},
        {"Periodic", MabAlgorithm::Periodic},
        {"eGreedy", MabAlgorithm::EpsilonGreedy},
        {"UCB", MabAlgorithm::Ucb},
        {"DUCB", MabAlgorithm::Ducb},
    };

    // One task per mix: all regime runs share the task-owned
    // simulator, in the original serial order.
    struct MixResult
    {
        double bestStatic = 0.0;
        double choi = 0.0;
        std::vector<double> algo;
    };
    const ShardCodec<MixResult> codec{
        [](const MixResult &r) {
            json::Value v = json::Value::object();
            v["bestStatic"] = encodeDouble(r.bestStatic);
            v["choi"] = encodeDouble(r.choi);
            json::Value arr = json::Value::array();
            for (double d : r.algo)
                arr.push(encodeDouble(d));
            v["algo"] = std::move(arr);
            return v;
        },
        [](const json::Value &v) {
            MixResult r;
            r.bestStatic =
                decodeDouble(v.find("bestStatic")->asString());
            r.choi = decodeDouble(v.find("choi")->asString());
            for (const json::Value &d : v.find("algo")->items())
                r.algo.push_back(decodeDouble(d.asString()));
            return r;
        }};
    const std::vector<MixResult> results = shardedSweep<MixResult>(
        jobs, mixes.size(), codec, [&](size_t i) {
            const auto &[a, b] = mixes[i];
            SmtSimulator sim(a, b, run_cfg);
            MixResult r;
            for (const auto &arm : smtArmTable())
                r.bestStatic = std::max(r.bestStatic,
                                        sim.runStatic(arm).ipcSum);
            r.choi = sim.runStatic(choiPolicy()).ipcSum;
            for (const auto &[label, algo] : algos) {
                SmtBanditConfig cfg;
                cfg.algorithm = algo;
                r.algo.push_back(sim.runBandit(cfg).ipcSum);
            }
            return r;
        });
    if (shardPartialDone(argc, argv))
        return 0;

    std::map<std::string, std::vector<double>> ratios;
    for (const MixResult &r : results) {
        ratios["Choi"].push_back(r.choi / r.bestStatic);
        for (size_t c = 0; c < algos.size(); ++c)
            ratios[algos[c].first].push_back(r.algo[c] /
                                             r.bestStatic);
    }

    const std::vector<std::string> cols = {
        "Choi", "Single", "Periodic", "eGreedy", "UCB", "DUCB",
    };
    std::printf("Table 9: IPC as %% of best static arm (SMT tune set, "
                "%zu mixes)\n", mixes.size());
    std::printf("%-7s", "");
    for (const auto &c : cols)
        std::printf("%10s", c.c_str());
    std::printf("\n");
    rule(67);
    for (const char *row : {"min", "max", "gmean"}) {
        std::printf("%-7s", row);
        for (const auto &c : cols) {
            const RatioSummary s = summarizeRatios(ratios[c]);
            const double v = row == std::string("min") ? s.min
                : row == std::string("max")            ? s.max
                                                       : s.gmean;
            std::printf("%10s", fmt(v, 1).c_str());
        }
        std::printf("\n");
    }
    rule(67);
    std::printf("Paper:  min  77.2 / 77.8 / 88.4 / 92.0 / 90.9 / 92.2\n"
                "        max 101.0 /101.1 /100.4 /100.5 /101.1 /101.4\n"
                "        gm   94.5 / 96.8 / 97.2 / 97.8 / 98.4 / 98.6\n");

    json::Value root = json::Value::object();
    root["bench"] = "table9_smt_algos";
    root["maxCycles"] = run_cfg.maxCycles;
    root["scale"] = benchScale();
    root["mixes"] = static_cast<uint64_t>(mixes.size());
    json::Value table = json::Value::object();
    for (const auto &c : cols) {
        const RatioSummary s = summarizeRatios(ratios[c]);
        json::Value row = json::Value::object();
        row["min"] = s.min;
        row["max"] = s.max;
        row["gmean"] = s.gmean;
        table[c] = std::move(row);
    }
    root["pctOfBestStatic"] = std::move(table);
    return writeJsonReport(root, argc, argv) ? 0 : 1;
}
